// Determinism tests for the parallel training pipeline: the threaded
// backward kernels (chunked SumRows reduction, sharded embedding
// scatter-add), the fused Adam step and the guided-learning eviction pass
// must produce bit-identical results for serial execution and any worker
// count. These tests are the ones the TSan CI job runs — every parallel
// code path below must also be race-free by construction.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "baselines/inverted_index.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/scaling.h"
#include "core/trainer.h"
#include "core/training_data.h"
#include "deepsets/compressed_model.h"
#include "deepsets/deepsets_model.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/ops.h"
#include "nn/optimizer.h"
#include "sets/generators.h"
#include "sets/subset_gen.h"
#include "sets/workload.h"

namespace los {
namespace {

using nn::Tensor;

/// Injects a multi-worker pool into the nn kernels for the scope's
/// lifetime (worker count independent of the host's core count).
class ScopedKernelPool {
 public:
  explicit ScopedKernelPool(size_t threads) : pool_(threads) {
    nn::SetKernelThreadPool(&pool_);
  }
  ~ScopedKernelPool() { nn::SetKernelThreadPool(nullptr); }

 private:
  ThreadPool pool_;
};

/// Forces fully serial kernel execution for the scope's lifetime.
class ScopedSerialKernels {
 public:
  ScopedSerialKernels() { nn::SetKernelThreading(false); }
  ~ScopedSerialKernels() { nn::SetKernelThreading(true); }
};

// ---------- Kernel-level determinism ----------

TEST(SumRowsTest, ChunkedReductionInvariantAcrossWorkerCounts) {
  Rng rng(3);
  Tensor x(1100, 48);  // > 4 fixed chunks of 256 rows, with a remainder
  nn::GaussianInit(&x, 1.0f, &rng);
  Tensor base(1, 48);
  nn::GaussianInit(&base, 1.0f, &rng);

  Tensor serial = base;
  {
    ScopedSerialKernels off;
    nn::SumRowsAccumulate(x, &serial);
  }
  for (size_t workers : {1u, 2u, 8u}) {
    ScopedKernelPool pool(workers);
    Tensor threaded = base;
    nn::SumRowsAccumulate(x, &threaded);
    EXPECT_EQ(std::memcmp(serial.data(), threaded.data(),
                          static_cast<size_t>(serial.size()) * sizeof(float)),
              0)
        << workers << " workers";
  }
}

TEST(EmbeddingScatterTest, ShardedScatterAddIsBitIdenticalToNaiveLoop) {
  const int64_t vocab = 300;
  const int64_t dim = 16;
  const size_t n = 2048;  // n * dim is above the sharded-path threshold
  Rng rng(7);
  std::vector<uint32_t> ids(n);
  for (auto& id : ids) {
    // Skewed ids so shards are uneven and many rows repeat.
    id = static_cast<uint32_t>(rng.Uniform(static_cast<uint64_t>(vocab)) / 2);
  }
  Tensor dout(static_cast<int64_t>(n), dim);
  nn::GaussianInit(&dout, 1.0f, &rng);

  // Expected result: the seed's serial scatter-add order.
  Tensor expected(vocab, dim);
  for (size_t i = 0; i < n; ++i) {
    const float* src = dout.row(static_cast<int64_t>(i));
    float* dst = expected.row(ids[i]);
    for (int64_t j = 0; j < dim; ++j) dst[j] += src[j];
  }

  for (size_t workers : {1u, 2u, 8u}) {
    ScopedKernelPool pool(workers);
    Rng init_rng(7);
    nn::Embedding embed(vocab, dim, &init_rng);
    embed.Backward(ids, dout);
    EXPECT_EQ(std::memcmp(expected.data(), embed.table()->grad.data(),
                          static_cast<size_t>(expected.size()) * sizeof(float)),
              0)
        << workers << " workers";
  }
}

TEST(AdamStepTest, FusedMatchesReferenceBitExact) {
  Rng rng(11);
  Tensor value(123, 37), grad(123, 37), m(123, 37), v(123, 37);
  nn::GaussianInit(&value, 1.0f, &rng);
  nn::GaussianInit(&grad, 1.0f, &rng);
  nn::GaussianInit(&m, 0.1f, &rng);
  // Second moments must be non-negative.
  nn::GaussianInit(&v, 0.1f, &rng);
  for (int64_t i = 0; i < v.size(); ++i) {
    v.data()[i] = std::abs(v.data()[i]);
  }

  Tensor value_ref = value, grad_ref = grad, m_ref = m, v_ref = v;
  nn::AdamStepReference(1e-3f, 0.9f, 0.999f, 1e-7f, &value_ref, &grad_ref,
                        &m_ref, &v_ref);
  for (size_t workers : {1u, 2u, 8u}) {
    ScopedKernelPool pool(workers);
    Tensor value_f = value, grad_f = grad, m_f = m, v_f = v;
    nn::AdamStepFused(1e-3f, 0.9f, 0.999f, 1e-7f, &value_f, &grad_f, &m_f,
                      &v_f);
    EXPECT_EQ(std::memcmp(value_ref.data(), value_f.data(),
                          static_cast<size_t>(value.size()) * sizeof(float)),
              0)
        << workers << " workers";
    EXPECT_EQ(std::memcmp(m_ref.data(), m_f.data(),
                          static_cast<size_t>(m.size()) * sizeof(float)),
              0);
    EXPECT_EQ(std::memcmp(v_ref.data(), v_f.data(),
                          static_cast<size_t>(v.size()) * sizeof(float)),
              0);
    EXPECT_EQ(grad_f.AbsMax(), 0.0f) << "fused step must zero the gradient";
  }
}

TEST(AdamStepTest, MomentsFollowParameterIndexAcrossReallocation) {
  // Index-keyed optimizer state: moments belong to slot i of the params
  // vector, not to the Parameter's address. Moving the parameter to a new
  // object mid-run must not reset (or, worse, mismatch) its moments.
  Rng rng(13);
  nn::Parameter a(8, 8);
  nn::GaussianInit(&a.value, 1.0f, &rng);
  nn::Parameter b(8, 8);
  b.value = a.value;

  auto fake_grad = [](nn::Parameter* p) { p->grad = p->value; };

  nn::Adam uninterrupted(1e-2f);
  for (int t = 0; t < 6; ++t) {
    fake_grad(&a);
    uninterrupted.Step({&a});
  }

  nn::Adam interrupted(1e-2f);
  for (int t = 0; t < 3; ++t) {
    fake_grad(&b);
    interrupted.Step({&b});
  }
  auto moved = std::make_unique<nn::Parameter>();
  moved->value = std::move(b.value);
  moved->grad = std::move(b.grad);
  for (int t = 0; t < 3; ++t) {
    fake_grad(moved.get());
    interrupted.Step({moved.get()});
  }

  EXPECT_EQ(std::memcmp(a.value.data(), moved->value.data(),
                        static_cast<size_t>(a.value.size()) * sizeof(float)),
            0);
}

// ---------- End-to-end training determinism ----------

enum class Task { kIndex, kCardinality, kBloom };

sets::SetCollection TestCollection() {
  sets::RwConfig gen;
  gen.num_sets = 150;
  gen.num_unique = 160;
  gen.seed = 21;
  return GenerateRw(gen);
}

core::TrainingSet BuildData(Task task, const sets::SetCollection& collection,
                            core::TargetScaler* scaler) {
  auto subsets = EnumerateLabeledSubsets(collection, {});
  switch (task) {
    case Task::kIndex:
      *scaler = core::TargetScaler::FitRange(
          0.0, static_cast<double>(collection.size() - 1));
      return core::TrainingSet::FromSubsets(
          subsets, sets::QueryLabel::kFirstPosition, *scaler);
    case Task::kCardinality:
      *scaler = core::TargetScaler::FitRange(1.0, subsets.MaxCardinality());
      return core::TrainingSet::FromSubsets(
          subsets, sets::QueryLabel::kCardinality, *scaler);
    case Task::kBloom: {
      *scaler = core::TargetScaler::FitRange(0.0, 1.0);
      baselines::InvertedIndex index(collection);
      std::function<bool(sets::SetView)> contains =
          [&index](sets::SetView q) { return index.Contains(q); };
      Rng rng(5);
      std::vector<sets::Query> negatives = sets::SampleNegativeQueries(
          collection.universe_size(), 3, subsets.size(), contains, &rng);
      return core::TrainingSet::FromMembership(subsets, negatives);
    }
  }
  return core::TrainingSet();
}

core::TrainConfig TestTrainConfig(Task task) {
  core::TrainConfig tc;
  tc.epochs = 3;
  // Batch of 256 sets: enough gathered rows to cross the sharded
  // scatter-add and chunked SumRows thresholds, so the parallel paths are
  // the ones under test.
  tc.batch_size = 256;
  tc.seed = 2;
  tc.loss = task == Task::kBloom ? core::LossKind::kBce : core::LossKind::kMse;
  return tc;
}

std::unique_ptr<deepsets::SetModel> TestModel(
    const sets::SetCollection& collection, bool compressed) {
  if (compressed) {
    deepsets::CompressedConfig cfg;
    cfg.base.vocab = static_cast<int64_t>(collection.universe_size());
    cfg.base.embed_dim = 16;
    cfg.base.phi_hidden = {32};
    cfg.base.rho_hidden = {32};
    cfg.base.seed = 1;
    cfg.ns = 2;
    auto model = deepsets::CompressedDeepSetsModel::Create(cfg);
    EXPECT_TRUE(model.ok());
    return std::move(*model);
  }
  deepsets::DeepSetsConfig cfg;
  cfg.vocab = static_cast<int64_t>(collection.universe_size());
  cfg.embed_dim = 32;
  cfg.phi_hidden = {32};
  cfg.rho_hidden = {32};
  cfg.seed = 1;
  return std::make_unique<deepsets::DeepSetsModel>(cfg);
}

std::vector<float> DumpWeights(deepsets::SetModel* model) {
  std::vector<nn::Parameter*> params;
  model->CollectParameters(&params);
  std::vector<float> weights;
  for (const auto* p : params) {
    const float* d = p->value.data();
    weights.insert(weights.end(), d, d + p->value.size());
  }
  return weights;
}

/// Trains a fresh model on fresh data; workers == 0 means fully serial.
std::vector<float> TrainWeights(Task task, bool compressed, size_t workers) {
  std::unique_ptr<ScopedSerialKernels> serial;
  std::unique_ptr<ScopedKernelPool> pool;
  if (workers == 0) {
    serial = std::make_unique<ScopedSerialKernels>();
  } else {
    pool = std::make_unique<ScopedKernelPool>(workers);
  }
  auto collection = TestCollection();
  core::TargetScaler scaler;
  core::TrainingSet data = BuildData(task, collection, &scaler);
  auto model = TestModel(collection, compressed);
  core::Trainer trainer(TestTrainConfig(task));
  trainer.Train(model.get(), data);
  return DumpWeights(model.get());
}

class TrainingDeterminismTest : public ::testing::TestWithParam<Task> {};

TEST_P(TrainingDeterminismTest, WeightsBitIdenticalAcrossWorkerCounts) {
  std::vector<float> serial = TrainWeights(GetParam(), false, 0);
  ASSERT_FALSE(serial.empty());
  for (size_t workers : {1u, 2u, 8u}) {
    std::vector<float> threaded = TrainWeights(GetParam(), false, workers);
    ASSERT_EQ(serial.size(), threaded.size());
    EXPECT_EQ(std::memcmp(serial.data(), threaded.data(),
                          serial.size() * sizeof(float)),
              0)
        << workers << " workers";
  }
}

INSTANTIATE_TEST_SUITE_P(AllStructureTypes, TrainingDeterminismTest,
                         ::testing::Values(Task::kIndex, Task::kCardinality,
                                           Task::kBloom),
                         [](const auto& info) {
                           switch (info.param) {
                             case Task::kIndex:
                               return "Index";
                             case Task::kCardinality:
                               return "Cardinality";
                             case Task::kBloom:
                               return "Bloom";
                           }
                           return "Unknown";
                         });

TEST(TrainingDeterminismCompressedTest, ClsmWeightsBitIdenticalAcrossWorkers) {
  std::vector<float> serial = TrainWeights(Task::kCardinality, true, 0);
  ASSERT_FALSE(serial.empty());
  for (size_t workers : {2u, 8u}) {
    std::vector<float> threaded = TrainWeights(Task::kCardinality, true,
                                               workers);
    ASSERT_EQ(serial.size(), threaded.size());
    EXPECT_EQ(std::memcmp(serial.data(), threaded.data(),
                          serial.size() * sizeof(float)),
              0)
        << workers << " workers";
  }
}

// ---------- Guided learning (outlier eviction) determinism ----------

std::vector<size_t> GuidedOutliers(size_t workers) {
  std::unique_ptr<ScopedSerialKernels> serial;
  std::unique_ptr<ScopedKernelPool> pool;
  if (workers == 0) {
    serial = std::make_unique<ScopedSerialKernels>();
  } else {
    pool = std::make_unique<ScopedKernelPool>(workers);
  }
  auto collection = TestCollection();
  core::TargetScaler scaler;
  core::TrainingSet data = BuildData(Task::kIndex, collection, &scaler);
  auto model = TestModel(collection, false);
  core::GuidedConfig guided;
  guided.train = TestTrainConfig(Task::kIndex);
  guided.train.epochs = 2;
  guided.rounds = 3;
  guided.keep_fraction = 0.8;
  core::GuidedResult res =
      TrainGuided(model.get(), &data, scaler, guided);
  return res.outliers;
}

TEST(GuidedDeterminismTest, EvictsIdenticalOutlierSetAtEveryWorkerCount) {
  std::vector<size_t> serial = GuidedOutliers(0);
  EXPECT_FALSE(serial.empty()) << "config must actually evict something";
  for (size_t workers : {1u, 2u, 8u}) {
    EXPECT_EQ(serial, GuidedOutliers(workers)) << workers << " workers";
  }
}

}  // namespace
}  // namespace los
