// Online-update subsystem (ISSUE 8 tentpole): generation-store RCU
// semantics, the background-retraining engine, and the three typed
// wrappers' visibility contracts — including the Bloom wrapper's
// no-false-negative guarantee across generation swaps, checked against
// exhaustive subset ground truth.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "core/updatable.h"
#include "nn/losses.h"
#include "sets/generators.h"
#include "sets/set_hash.h"
#include "sets/subset_gen.h"

namespace los::core {
namespace {

sets::SetCollection TestCollection(uint64_t seed = 1) {
  sets::RwConfig rw;
  rw.num_sets = 200;
  rw.num_unique = 50;
  rw.seed = seed;
  return GenerateRw(rw);
}

UpdatableSetIndex::Options FastIndexOptions() {
  UpdatableSetIndex::Options opts;
  opts.index.train.epochs = 8;
  opts.index.train.loss = LossKind::kMse;
  opts.index.max_subset_size = 2;
  opts.update.rebuild_after_absorbed = 0;  // tests trigger explicitly
  return opts;
}

UpdatableBloom::Options FastBloomOptions() {
  UpdatableBloom::Options opts;
  opts.bloom.train.epochs = 10;
  opts.bloom.max_subset_size = 2;
  opts.update.rebuild_after_absorbed = 0;
  return opts;
}

// ---------- GenerationStore ----------

struct CountedGen {
  static std::atomic<int> live;
  int value;
  explicit CountedGen(int v) : value(v) { live.fetch_add(1); }
  ~CountedGen() { live.fetch_sub(1); }
};
std::atomic<int> CountedGen::live{0};

TEST(GenerationStoreTest, PinKeepsRetiredGenerationAlive) {
  {
    GenerationStore<CountedGen> store(std::make_unique<CountedGen>(1));
    EXPECT_EQ(store.generation(), 1u);
    auto pin = store.Acquire();
    EXPECT_EQ(pin->value, 1);

    EXPECT_EQ(store.Publish(std::make_unique<CountedGen>(2)), 2u);
    // The pinned generation must survive the swap...
    EXPECT_EQ(pin->value, 1);
    EXPECT_EQ(CountedGen::live.load(), 2);
    // ...while new readers land on the new one.
    EXPECT_EQ(store.Acquire()->value, 2);

    // Once the pin drops, the next publish reclaims the retired generation.
    { auto drop = std::move(pin); }
    store.Publish(std::make_unique<CountedGen>(3));
    EXPECT_EQ(CountedGen::live.load(), 1);
    EXPECT_EQ(store.Acquire()->value, 3);
    EXPECT_EQ(store.generation(), 3u);
  }
  EXPECT_EQ(CountedGen::live.load(), 0);
}

TEST(GenerationStoreTest, ManyPublishesWithConcurrentReaders) {
  GenerationStore<CountedGen> store(std::make_unique<CountedGen>(0));
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      int last = 0;
      while (!stop.load(std::memory_order_acquire)) {
        auto pin = store.Acquire();
        // Values must be readable (no use-after-free) and monotone per
        // reader: a pin can lag the newest publish but never go backwards.
        if (pin->value < last) bad.fetch_add(1);
        last = pin->value;
      }
    });
  }
  for (int i = 1; i <= 500; ++i) {
    store.Publish(std::make_unique<CountedGen>(i));
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(store.generation(), 501u);
  // Everything except the live generation drained and was reclaimed.
  EXPECT_EQ(store.resident_generations(), 1u);
  EXPECT_EQ(CountedGen::live.load(), 1);
}

// ---------- ConcurrentBloomDelta ----------

TEST(ConcurrentBloomDeltaTest, InsertedKeysAlwaysHit) {
  ConcurrentBloomDelta delta(1 << 12, 4);
  std::vector<std::vector<sets::ElementId>> keys;
  for (sets::ElementId a = 0; a < 20; ++a) {
    for (sets::ElementId b = a + 1; b < 20; ++b) keys.push_back({a, b});
  }
  for (const auto& k : keys) delta.Insert(sets::SetView(k));
  for (const auto& k : keys) {
    EXPECT_TRUE(delta.MayContain(sets::SetView(k)));
  }
  EXPECT_EQ(delta.inserted(), keys.size());
  // Sanity: an unrelated key space mostly misses (not saturated).
  size_t hits = 0;
  for (sets::ElementId a = 1000; a < 1200; ++a) {
    std::vector<sets::ElementId> k{a, a + 1};
    if (delta.MayContain(sets::SetView(k))) ++hits;
  }
  EXPECT_LT(hits, 40u);
}

// ---------- UpdatableSetIndex ----------

TEST(UpdatableSetIndexTest, UpdatesVisibleImmediatelyAndAfterRebuild) {
  auto idx = UpdatableSetIndex::Build(TestCollection(), FastIndexOptions());
  ASSERT_TRUE(idx.ok()) << idx.status().ToString();
  auto& index = **idx;
  EXPECT_EQ(index.generation(), 1u);

  ASSERT_TRUE(index.Update(10, {101, 102}).ok());
  ASSERT_TRUE(index.Update(20, {103, 104, 105}).ok());
  EXPECT_EQ(index.updates_applied(), 2u);
  // publish_after_updates = 1: each update published a fresh snapshot.
  EXPECT_EQ(index.generation(), 3u);

  std::vector<sets::ElementId> q{101, 102};
  EXPECT_EQ(index.Lookup(sets::SetView(q)), 10);
  std::vector<sets::ElementId> q2{104, 105};
  EXPECT_EQ(index.Lookup(sets::SetView(q2)), 20);

  // A full retrain+swap keeps both answers.
  ASSERT_TRUE(index.RebuildNow().ok());
  EXPECT_EQ(index.generation(), 4u);
  EXPECT_EQ(index.Lookup(sets::SetView(q)), 10);
  EXPECT_EQ(index.Lookup(sets::SetView(q2)), 20);
}

TEST(UpdatableSetIndexTest, BackgroundRebuildTriggersAtThreshold) {
  MetricsRegistry registry;
  auto opts = FastIndexOptions();
  opts.update.rebuild_after_absorbed = 3;
  auto idx =
      UpdatableSetIndex::Build(TestCollection(), opts, &registry);
  ASSERT_TRUE(idx.ok()) << idx.status().ToString();
  auto& index = **idx;

  ASSERT_TRUE(index.Update(10, {120, 121}).ok());
  ASSERT_TRUE(index.Update(20, {122, 123}).ok());
  index.WaitForRebuilds();
  EXPECT_FALSE(index.NeedsRebuild());
  EXPECT_GE(index.engine()->rebuilds(), 1u);
  // The retrained generation still answers the updated sets (aux replay or
  // fresh model — either way, no lost update).
  std::vector<sets::ElementId> q{120, 121};
  EXPECT_EQ(index.Lookup(sets::SetView(q)), 10);
  auto snap = registry.Snapshot();
  const auto* gen = snap.FindGauge("updatable.index.generation");
  ASSERT_NE(gen, nullptr);
  EXPECT_GE(gen->value, 3.0);
  const auto* rec = snap.FindGauge("updatable.index.rebuild_recommended");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->value, 0.0);
}

TEST(UpdatableSetIndexTest, CheckpointWrittenAfterRebuild) {
  auto opts = FastIndexOptions();
  opts.update.checkpoint_path =
      testing::TempDir() + "/los_updatable_index_ckpt.bin";
  std::remove(opts.update.checkpoint_path.c_str());
  auto idx = UpdatableSetIndex::Build(TestCollection(), opts);
  ASSERT_TRUE(idx.ok()) << idx.status().ToString();
  ASSERT_TRUE((*idx)->RebuildNow().ok());

  auto reader = BinaryReader::FromFile(opts.update.checkpoint_path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto collection = sets::SetCollection::Load(&*reader);
  ASSERT_TRUE(collection.ok());
  auto loaded = LearnedSetIndex::Load(&*reader, *collection);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(reader->AtEnd());
  std::remove(opts.update.checkpoint_path.c_str());
}

// ---------- UpdatableCardinality ----------

TEST(UpdatableCardinalityTest, ServesAcrossInsertAndRebuild) {
  UpdatableCardinality::Options opts;
  opts.cardinality.train.epochs = 8;
  opts.cardinality.max_subset_size = 2;
  opts.update.rebuild_after_absorbed = 0;
  MetricsRegistry registry;
  auto est =
      UpdatableCardinality::Build(TestCollection(), opts, &registry);
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  auto& card = **est;

  std::vector<sets::ElementId> q{1, 2};
  double before = card.Estimate(sets::SetView(q));
  EXPECT_GE(before, 0.0);

  // Inserts mutate the master only; serving stays on generation 1 until a
  // rebuild publishes (bounded staleness).
  card.Insert({1, 2, 3});
  card.Insert({1, 2, 4});
  EXPECT_EQ(card.generation(), 1u);
  EXPECT_EQ(card.engine()->pending_absorbed(), 2u);

  ASSERT_TRUE(card.RebuildNow().ok());
  EXPECT_EQ(card.generation(), 2u);
  EXPECT_EQ(card.engine()->pending_absorbed(), 0u);
  EXPECT_GE(card.Estimate(sets::SetView(q)), 0.0);
  auto snap = registry.Snapshot();
  const auto* lag = snap.FindGauge("updatable.cardinality.lag_absorbed");
  ASSERT_NE(lag, nullptr);
  EXPECT_EQ(lag->value, 0.0);
}

// ---------- UpdatableBloom: no false negatives across generations ----------

TEST(UpdatableBloomTest, NoFalseNegativesAcrossGenerations) {
  // Small universe so the ground truth — every subset (up to the bound) of
  // every set inserted so far must answer "maybe present" — is exhaustively
  // checkable after every step.
  sets::RwConfig rw;
  rw.num_sets = 120;
  rw.num_unique = 40;
  rw.seed = 5;
  auto opts = FastBloomOptions();
  auto blm = UpdatableBloom::Build(GenerateRw(rw), opts);
  ASSERT_TRUE(blm.ok()) << blm.status().ToString();
  auto& bloom = **blm;

  std::set<std::vector<sets::ElementId>> truth;
  auto absorb_truth = [&](const std::vector<sets::ElementId>& s) {
    sets::ForEachSubset(sets::SetView(s), opts.bloom.max_subset_size,
                        [&](sets::SetView sub) {
                          truth.emplace(sub.begin(), sub.end());
                        });
  };
  auto check_truth = [&](const char* when) {
    for (const auto& key : truth) {
      EXPECT_TRUE(bloom.MayContain(sets::SetView(key)))
          << when << ": inserted key reported absent: size " << key.size()
          << " first " << key.front();
    }
  };

  // Keys with brand-new (out-of-vocabulary) elements: the trained filter
  // rejects them outright, so only the delta path can honor them.
  std::vector<std::vector<sets::ElementId>> inserts = {
      {200, 201}, {202, 203, 204}, {205}, {206, 207, 208, 209}};
  for (const auto& s : inserts) {
    bloom.Insert(s);
    absorb_truth(s);
    check_truth("after insert");
  }

  // Swap generations with inserts landing between build and publish: the
  // replay in finalize must carry every key across.
  ASSERT_TRUE(bloom.RebuildNow().ok());
  EXPECT_EQ(bloom.generation(), 2u);
  check_truth("after first rebuild");

  bloom.Insert({210, 211});
  absorb_truth({210, 211});
  check_truth("after post-rebuild insert");

  ASSERT_TRUE(bloom.RebuildNow().ok());
  check_truth("after second rebuild");

  // Batched path agrees with the single-query path.
  std::vector<sets::Query> queries;
  for (const auto& key : truth) {
    sets::Query q;
    q.elements = key;
    queries.push_back(std::move(q));
    if (queries.size() == 64) break;
  }
  auto verdicts = bloom.MayContainMulti(queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(verdicts[i]) << "MayContainMulti dropped inserted key " << i;
  }
}

TEST(UpdatableBloomTest, UpdateAbsorbsNewContent) {
  auto blm = UpdatableBloom::Build(TestCollection(3), FastBloomOptions());
  ASSERT_TRUE(blm.ok()) << blm.status().ToString();
  auto& bloom = **blm;
  ASSERT_TRUE(bloom.Update(7, {300, 301}).ok());
  std::vector<sets::ElementId> q{300, 301};
  EXPECT_TRUE(bloom.MayContain(sets::SetView(q)));
  EXPECT_FALSE(bloom.Update(100000, {1}).ok());
}

}  // namespace
}  // namespace los::core
