// Rebuild-while-serving race repro (ISSUE 8 satellite): one thread streams
// updates and triggers full retrains while reader threads hammer the query
// paths. On the seed code — UpdatableIndex::Rebuild() replacing a plain
// unique_ptr under concurrent Lookup() — this access pattern is a
// use-after-free; the RCU generation store makes it safe. Run under TSan in
// CI: any unsynchronized swap is a reported race here.
//
// Assertions are deliberately coarse (answers are well-formed, rebuilds
// actually happened, updates are never lost); the point of the test is the
// interleaving, and TSan is the oracle for the memory-safety half.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/updatable.h"
#include "nn/losses.h"
#include "serve/serving.h"
#include "sets/generators.h"
#include "sets/workload.h"

namespace los::core {
namespace {

constexpr int kReaders = 3;
constexpr int kUpdates = 24;

sets::SetCollection TestCollection(uint64_t seed) {
  sets::RwConfig rw;
  rw.num_sets = 150;
  rw.num_unique = 40;
  rw.seed = seed;
  return GenerateRw(rw);
}

std::vector<sets::Query> ReaderQueries(uint32_t salt) {
  std::vector<sets::Query> qs;
  for (uint32_t i = 0; i < 16; ++i) {
    sets::Query q;
    q.elements = {(salt + i) % 40, (salt + i) % 40 + 1};
    sets::Canonicalize(&q.elements);
    qs.push_back(std::move(q));
  }
  return qs;
}

// New contents for update #i: two brand-new elements, so every update is
// only findable if the absorb/replay machinery carried it across swaps.
std::vector<sets::ElementId> UpdatedElements(int i) {
  return {static_cast<sets::ElementId>(1000 + 2 * i),
          static_cast<sets::ElementId>(1001 + 2 * i)};
}

TEST(UpdateWhileServingTest, IndexLookupsDuringUpdatesAndRebuilds) {
  UpdatableSetIndex::Options opts;
  opts.index.train.epochs = 4;
  opts.index.train.loss = LossKind::kMse;
  opts.index.max_subset_size = 2;
  opts.update.rebuild_after_absorbed = 8;  // several swaps over the stream
  auto built = UpdatableSetIndex::Build(TestCollection(1), opts);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto& index = **built;

  std::atomic<bool> stop{false};
  std::atomic<int> malformed{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      auto queries = ReaderQueries(static_cast<uint32_t>(t));
      while (!stop.load(std::memory_order_acquire)) {
        auto results = index.LookupBatch(queries);
        if (results.size() != queries.size()) malformed.fetch_add(1);
        for (int64_t r : results) {
          if (r < -1 || r >= 150) malformed.fetch_add(1);
        }
        index.Lookup(queries[0].view());
      }
    });
  }

  for (int i = 0; i < kUpdates; ++i) {
    ASSERT_TRUE(index.Update(static_cast<size_t>(i % 150),
                             UpdatedElements(i))
                    .ok());
  }
  index.WaitForRebuilds();
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  EXPECT_EQ(malformed.load(), 0);
  EXPECT_GE(index.engine()->rebuilds(), 1u);
  EXPECT_EQ(index.engine()->rebuild_failures(), 0u);
  // No update lost across any swap.
  for (int i = kUpdates - 5; i < kUpdates; ++i) {
    auto q = UpdatedElements(i);
    EXPECT_EQ(index.Lookup(sets::SetView(q)), i % 150) << "update " << i;
  }
}

TEST(UpdateWhileServingTest, CardinalityEstimatesDuringRebuilds) {
  UpdatableCardinality::Options opts;
  opts.cardinality.train.epochs = 4;
  opts.cardinality.max_subset_size = 2;
  opts.update.rebuild_after_absorbed = 6;
  auto built = UpdatableCardinality::Build(TestCollection(2), opts);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto& card = **built;

  std::atomic<bool> stop{false};
  std::atomic<int> malformed{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      auto queries = ReaderQueries(static_cast<uint32_t>(10 + t));
      while (!stop.load(std::memory_order_acquire)) {
        auto ests = card.EstimateBatch(queries);
        if (ests.size() != queries.size()) malformed.fetch_add(1);
        for (double e : ests) {
          if (!(e >= 0.0) && e != -1.0) malformed.fetch_add(1);
        }
        card.Estimate(queries[0].view());
      }
    });
  }

  for (int i = 0; i < kUpdates; ++i) {
    if (i % 2 == 0) {
      card.Insert(UpdatedElements(i));
    } else {
      ASSERT_TRUE(
          card.Update(static_cast<size_t>(i % 150), UpdatedElements(i)).ok());
    }
  }
  card.WaitForRebuilds();
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  EXPECT_EQ(malformed.load(), 0);
  EXPECT_GE(card.engine()->rebuilds(), 1u);
  EXPECT_EQ(card.engine()->rebuild_failures(), 0u);
}

TEST(UpdateWhileServingTest, BloomMembershipDuringInsertsAndRebuilds) {
  UpdatableBloom::Options opts;
  opts.bloom.train.epochs = 6;
  opts.bloom.max_subset_size = 2;
  opts.update.rebuild_after_absorbed = 8;
  auto built = UpdatableBloom::Build(TestCollection(3), opts);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto& bloom = **built;

  std::atomic<bool> stop{false};
  std::atomic<int> missing{0};
  std::atomic<int> inserted_upto{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        // Readers verify the cross-generation guarantee live: every key
        // whose Insert has returned must answer "maybe present".
        const int upto = inserted_upto.load(std::memory_order_acquire);
        std::vector<sets::Query> qs;
        for (int i = 0; i < upto; ++i) {
          sets::Query q;
          q.elements = UpdatedElements(i);
          qs.push_back(std::move(q));
        }
        if (qs.empty()) continue;
        auto verdicts = bloom.MayContainMulti(qs);
        for (size_t i = 0; i < qs.size(); ++i) {
          if (!verdicts[i]) missing.fetch_add(1);
          if (!bloom.MayContain(qs[i].view())) missing.fetch_add(1);
        }
      }
    });
  }

  for (int i = 0; i < kUpdates; ++i) {
    bloom.Insert(UpdatedElements(i));
    inserted_upto.store(i + 1, std::memory_order_release);
  }
  bloom.WaitForRebuilds();
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  EXPECT_EQ(missing.load(), 0) << "false negative during concurrent swaps";
  EXPECT_GE(bloom.engine()->rebuilds(), 1u);
  EXPECT_EQ(bloom.engine()->rebuild_failures(), 0u);
}

TEST(UpdateWhileServingTest, ServiceIntegrationPicksUpGenerations) {
  UpdatableSetIndex::Options opts;
  opts.index.train.epochs = 4;
  opts.index.train.loss = LossKind::kMse;
  opts.index.max_subset_size = 2;
  opts.update.rebuild_after_absorbed = 8;
  auto built = UpdatableSetIndex::Build(TestCollection(4), opts);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto& index = **built;

  serve::ServeOptions serve_opts;
  serve_opts.max_batch = 16;
  serve_opts.max_delay_us = 100;
  auto service = serve::IndexService::Create(&index, serve_opts);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  std::atomic<bool> stop{false};
  std::atomic<int> malformed{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kReaders; ++t) {
    clients.emplace_back([&, t] {
      auto queries = ReaderQueries(static_cast<uint32_t>(20 + t));
      size_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        sets::Query q = queries[i++ % queries.size()];
        int64_t r = (*service)->Submit(std::move(q)).get();
        if (r < -1 || r >= 150) malformed.fetch_add(1);
      }
    });
  }

  for (int i = 0; i < kUpdates; ++i) {
    ASSERT_TRUE(
        index.Update(static_cast<size_t>(i % 150), UpdatedElements(i)).ok());
  }
  index.WaitForRebuilds();
  const uint64_t gen_after = index.generation();
  stop.store(true, std::memory_order_release);
  for (auto& th : clients) th.join();
  (*service)->Shutdown();

  EXPECT_EQ(malformed.load(), 0);
  EXPECT_GE(index.engine()->rebuilds(), 1u);
  // The batcher-served answer reflects the newest generation.
  sets::Query fresh;
  fresh.elements = UpdatedElements(kUpdates - 1);
  EXPECT_GE(gen_after, 2u);
  EXPECT_EQ(index.Lookup(fresh.view()), (kUpdates - 1) % 150);
}

}  // namespace
}  // namespace los::core
