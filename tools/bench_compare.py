#!/usr/bin/env python3
"""Compare bench JsonRecord lines against a committed baseline.

The bench binaries print one JSON object per measurement (greppable by
'"bench"'); baselines such as BENCH_build_times.json are those lines
committed to the repo. This tool re-keys both sides by their config
fields and flags median-time regressions beyond a threshold:

    bench/bench_table4_cardinality_time > fresh.json
    python3 tools/bench_compare.py BENCH_table4_cardinality_time.json fresh.json

Exit status: 0 = no regression, 1 = regression (or invalid input).
--report-only always exits 0 so PR CI can surface the diff without
gating on a noisy runner; the scheduled/main run gates for real.

--validate FILE checks schema only (each line parses, has "bench",
"metrics"/"provenance" are objects when present) — used by the CI
bench-smoke job to keep the records machine-readable.
"""

import argparse
import json
import sys

# Fields that are measurements (or attachments), not identity. A record's
# identity is its bench name plus every remaining config field, so adding
# a new sweep axis automatically splits the comparison space.
_MEASUREMENT_SUFFIXES = ("_s", "_ms", "_us", "_mb", "_bytes", "_per_s",
                         "_count")
# Quality readouts are measurements even when they happen to be integral
# (a sample count, a q-error of exactly 1) — without this they would join
# the record identity and split the comparison whenever quality moves.
_MEASUREMENT_PREFIXES = ("monitor_", "shadow_")
_ATTACHMENTS = {"samples", "metrics", "provenance"}

# Keys gated on regression: medians are stable; the p99 tail is gated too
# for records that carry it (serving benches accumulate thousands of
# per-request samples, so their tail is meaningful). p95 stays
# informational (single-digit sample counts make it too noisy to gate).
_GATE_KEYS = ("median_s", "median_ms", "p99_s", "p99_ms")
# Prefix-gated keys: model-quality readouts attached by the monitoring
# benches (monitor_qerror_p95, monitor_drift_score, ...). Quality regresses
# the same way latency does — a new commit that doubles the monitored
# q-error should trip the same gate as one that doubles the median.
_GATE_PREFIXES = ("monitor_",)


def _is_measurement(key, value):
    if key in _ATTACHMENTS:
        return True
    if any(key.endswith(s) for s in _MEASUREMENT_SUFFIXES):
        return True
    if key.startswith(_MEASUREMENT_PREFIXES):
        return True
    return isinstance(value, float)


def parse_records(path):
    """Yields dicts for every JSON line in `path` ('-' = stdin).

    Bench stdout mixes banners and table rows with the JSON records;
    anything that does not parse as a JSON object is skipped.
    """
    stream = sys.stdin if path == "-" else open(path, encoding="utf-8")
    try:
        for line in stream:
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(obj, dict) and "bench" in obj:
                yield obj
    finally:
        if stream is not sys.stdin:
            stream.close()


def identity(record):
    parts = [("bench", record["bench"])]
    for key in sorted(record):
        if key == "bench":
            continue
        value = record[key]
        if _is_measurement(key, value):
            continue
        parts.append((key, value))
    return tuple(parts)


def fmt_identity(ident):
    return " ".join("%s=%s" % (k, v) for k, v in ident)


def gate_keys(record):
    for key, value in record.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        if (key in _GATE_KEYS or key.endswith("_ms")
                or key.startswith(_GATE_PREFIXES)):
            yield key


def compare(baseline, fresh, threshold, min_seconds):
    base_by_id = {identity(r): r for r in baseline}
    fresh_by_id = {identity(r): r for r in fresh}
    if not base_by_id:
        print("warning: baseline has no JsonRecord lines", file=sys.stderr)
    if not fresh_by_id:
        print("warning: fresh run has no JsonRecord lines", file=sys.stderr)

    regressions = []
    compared = 0
    for ident, new in sorted(fresh_by_id.items()):
        old = base_by_id.get(ident)
        if old is None:
            print("new (no baseline): %s" % fmt_identity(ident))
            continue
        if "provenance" in new and "provenance" not in old:
            print("note: baseline for %s predates provenance stamping"
                  % fmt_identity(ident))
        for key in gate_keys(new):
            if key not in old or not isinstance(old[key], (int, float)):
                continue
            old_v, new_v = float(old[key]), float(new[key])
            if old_v <= 0 or new_v < 0:
                continue
            # Ignore timings below the noise floor: a 0.2us -> 0.3us move
            # is scheduler jitter, not a regression.
            floor = min_seconds * (1000.0 if key.endswith("_ms") else 1.0)
            if old_v < floor and new_v < floor:
                continue
            compared += 1
            ratio = new_v / old_v
            line = "%-9s %s %s: %.6g -> %.6g (%+.1f%%)" % (
                "REGRESSED" if ratio > 1.0 + threshold else
                "improved" if ratio < 1.0 - threshold else "ok",
                fmt_identity(ident), key, old_v, new_v, (ratio - 1.0) * 100)
            print(line)
            if ratio > 1.0 + threshold:
                regressions.append(line)
    for ident in sorted(base_by_id):
        if ident not in fresh_by_id:
            print("missing from fresh run: %s" % fmt_identity(ident))

    print("\ncompared %d measurement(s), %d regression(s) beyond %.0f%%"
          % (compared, len(regressions), threshold * 100))
    return regressions


def validate(path):
    """Schema check: returns a list of problems (empty = valid)."""
    problems = []
    count = 0
    for record in parse_records(path):
        count += 1
        where = "%s record %d (bench=%s)" % (path, count,
                                             record.get("bench"))
        if not isinstance(record.get("bench"), str) or not record["bench"]:
            problems.append("%s: \"bench\" must be a non-empty string"
                            % where)
        for key in ("metrics", "provenance"):
            if key in record and not isinstance(record[key], dict):
                problems.append("%s: \"%s\" must be a JSON object"
                                % (where, key))
        prov = record.get("provenance")
        if isinstance(prov, dict):
            for field in ("git_sha", "compiler", "native", "threads"):
                if field not in prov:
                    problems.append("%s: provenance missing \"%s\""
                                    % (where, field))
        if "samples" in record:
            for field in ("median_s", "p95_s", "p99_s"):
                if field not in record:
                    problems.append("%s: has samples but no %s"
                                    % (where, field))
    if count == 0:
        problems.append("%s: no JsonRecord lines found" % path)
    return problems


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", nargs="?",
                    help="committed BENCH_*.json baseline")
    ap.add_argument("fresh", nargs="?", default="-",
                    help="fresh bench output (file or '-' for stdin)")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="relative regression gate (default 0.25 = +25%%)")
    ap.add_argument("--min-seconds", type=float, default=1e-6,
                    help="ignore timings where both sides are below this "
                         "many seconds (noise floor, default 1e-6)")
    ap.add_argument("--report-only", action="store_true",
                    help="print the diff but always exit 0")
    ap.add_argument("--validate", metavar="FILE", action="append",
                    default=[],
                    help="schema-validate FILE instead of comparing "
                         "(repeatable)")
    args = ap.parse_args()

    if args.validate:
        problems = []
        for path in args.validate:
            problems.extend(validate(path))
        for p in problems:
            print("invalid: %s" % p, file=sys.stderr)
        if not problems:
            print("validated %d file(s): ok" % len(args.validate))
        return 1 if problems else 0

    if args.baseline is None:
        ap.error("baseline file required (or use --validate)")
    try:
        baseline = list(parse_records(args.baseline))
    except FileNotFoundError:
        # A brand-new bench has no committed baseline yet. That is a note
        # for the reviewer, not a CI failure: list the fresh records so the
        # run is still inspectable, and exit clean.
        print("note: no baseline at %s (new bench?) — report only"
              % args.baseline)
        for record in parse_records(args.fresh):
            print("new (no baseline): %s" % fmt_identity(identity(record)))
        return 0
    regressions = compare(baseline, list(parse_records(args.fresh)),
                          args.threshold, args.min_seconds)
    if regressions and not args.report_only:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
